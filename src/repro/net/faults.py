"""Fault injection: random loss, corruption, blackouts, ACK-kind drops.

Used by the failure-injection tests and by :mod:`repro.chaos` to verify
that transports recover from conditions the clean topologies never
produce: random in-network loss, payload corruption, bursty blackouts,
and loss of specific packet kinds (ACK loss is the classic nasty case).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Callable, List, Optional, Tuple

from ..sim.engine import Simulator
from .link import Port
from .node import Switch
from .packet import Packet

__all__ = ["RandomDropProcessor", "DeterministicDropProcessor",
           "BlackoutProcessor", "CorruptionProcessor", "drop_acks_filter"]


def drop_acks_filter(packet: Packet) -> bool:
    """Match pure acknowledgement packets of any transport.

    Works for MTP (header ``kind`` equals :data:`~repro.core.header.KIND_ACK`)
    and TCP (no payload, ACK flag set); used to inject the ACK-loss
    failure mode.
    """
    header = packet.header
    kind = getattr(header, "kind", None)
    if kind is not None:
        # Local import: repro.core and repro.transport both import back
        # into repro.net at module load, so top-level imports of the
        # header constants would dead-lock package initialisation.  By
        # the time packets flow, both modules are fully loaded and this
        # is a sys.modules lookup.
        from ..core.header import KIND_ACK
        return bool(kind == KIND_ACK)
    payload_len = getattr(header, "payload_len", None)
    flags = getattr(header, "flags", 0)
    if payload_len is not None:
        from ..transport.tcp import FLAG_ACK
        return payload_len == 0 and bool(flags & FLAG_ACK)
    return False


class RandomDropProcessor:
    """Drops each matching packet independently with fixed probability."""

    def __init__(self, probability: float, rng: random.Random,
                 match: Optional[Callable[[Packet], bool]] = None):
        if not 0 <= probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.rng = rng
        self.match = match or (lambda packet: True)
        self.dropped = 0
        self.passed = 0

    def process(self, packet: Packet, switch: Switch,
                ingress: Port) -> Optional[List[Packet]]:
        if self.match(packet) and self.rng.random() < self.probability:
            self.dropped += 1
            return []
        self.passed += 1
        return None


class DeterministicDropProcessor:
    """Drops every ``n``-th matching packet (reproducible loss pattern)."""

    def __init__(self, every_nth: int,
                 match: Optional[Callable[[Packet], bool]] = None):
        if every_nth <= 0:
            raise ValueError("every_nth must be positive")
        self.every_nth = every_nth
        self.match = match or (lambda packet: True)
        self._count = 0
        self.dropped = 0

    def process(self, packet: Packet, switch: Switch,
                ingress: Port) -> Optional[List[Packet]]:
        if not self.match(packet):
            return None
        self._count += 1
        if self._count % self.every_nth == 0:
            self.dropped += 1
            return []
        return None


class CorruptionProcessor:
    """Damages matching packets' payloads with fixed probability.

    Corruption does not drop the packet here — the damaged packet keeps
    travelling and is discarded by the *receiver's* checksum check
    (``Host.receive``), exactly like bit rot on a real wire.  The
    ``active`` flag lets an orchestrator (:mod:`repro.chaos`) scope the
    fault to a time window without detaching the processor.
    """

    def __init__(self, probability: float, rng: random.Random,
                 match: Optional[Callable[[Packet], bool]] = None):
        if not 0 <= probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.rng = rng
        self.match = match or (lambda packet: True)
        self.active = True
        self.corrupted = 0

    def process(self, packet: Packet, switch: Switch,
                ingress: Port) -> Optional[List[Packet]]:
        if (self.active and self.match(packet)
                and self.rng.random() < self.probability):
            packet.corrupted = True
            self.corrupted += 1
        return None


class BlackoutProcessor:
    """Drops everything during scheduled outage windows (link flaps).

    Windows are half-open ``[start_ns, end_ns)``.  Overlapping or
    adjacent windows are merged up front so membership is a single
    O(log windows) :func:`bisect.bisect_right` over the flattened edge
    array — parity of the insertion point tells inside from outside —
    instead of a linear scan per packet.
    """

    def __init__(self, sim: Simulator, outages: List):
        """``outages`` is a list of ``(start_ns, end_ns)`` windows."""
        for start, end in outages:
            if end <= start:
                raise ValueError(f"bad outage window ({start}, {end})")
        self.sim = sim
        merged: List[List[int]] = []
        for start, end in sorted(outages):
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        self.outages: List[Tuple[int, int]] = [
            (start, end) for start, end in merged]
        #: Flattened, strictly increasing window edges; an odd number of
        #: edges at or before ``now`` means ``now`` is inside a window.
        self._edges: List[int] = [
            edge for window in self.outages for edge in window]
        self.dropped = 0

    def in_outage(self, now: int) -> bool:
        """True while ``now`` falls inside any outage window."""
        return bisect_right(self._edges, now) % 2 == 1

    def process(self, packet: Packet, switch: Switch,
                ingress: Port) -> Optional[List[Packet]]:
        if self.in_outage(self.sim.now):
            self.dropped += 1
            return []
        return None
