"""Fault injection: random loss, corruption-like drops, link flaps.

Used by the failure-injection tests to verify that transports recover from
conditions the clean topologies never produce: random in-network loss,
bursty blackouts, and loss of specific packet kinds (ACK loss is the
classic nasty case).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..sim.engine import Simulator
from .link import Port
from .node import Switch
from .packet import Packet

__all__ = ["RandomDropProcessor", "DeterministicDropProcessor",
           "BlackoutProcessor", "drop_acks_filter"]


def drop_acks_filter(packet: Packet) -> bool:
    """Match pure acknowledgement packets of any transport.

    Works for MTP (header kind) and TCP (no payload, ACK flag); used to
    inject the ACK-loss failure mode.
    """
    header = packet.header
    kind = getattr(header, "kind", None)
    if kind is not None:
        return kind == 1  # MTP KIND_ACK
    payload_len = getattr(header, "payload_len", None)
    flags = getattr(header, "flags", 0)
    if payload_len is not None:
        return payload_len == 0 and bool(flags & 0x2)
    return False


class RandomDropProcessor:
    """Drops each matching packet independently with fixed probability."""

    def __init__(self, probability: float, rng: random.Random,
                 match: Optional[Callable[[Packet], bool]] = None):
        if not 0 <= probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.rng = rng
        self.match = match or (lambda packet: True)
        self.dropped = 0
        self.passed = 0

    def process(self, packet: Packet, switch: Switch,
                ingress: Port) -> Optional[List[Packet]]:
        if self.match(packet) and self.rng.random() < self.probability:
            self.dropped += 1
            return []
        self.passed += 1
        return None


class DeterministicDropProcessor:
    """Drops every ``n``-th matching packet (reproducible loss pattern)."""

    def __init__(self, every_nth: int,
                 match: Optional[Callable[[Packet], bool]] = None):
        if every_nth <= 0:
            raise ValueError("every_nth must be positive")
        self.every_nth = every_nth
        self.match = match or (lambda packet: True)
        self._count = 0
        self.dropped = 0

    def process(self, packet: Packet, switch: Switch,
                ingress: Port) -> Optional[List[Packet]]:
        if not self.match(packet):
            return None
        self._count += 1
        if self._count % self.every_nth == 0:
            self.dropped += 1
            return []
        return None


class BlackoutProcessor:
    """Drops everything during scheduled outage windows (link flaps)."""

    def __init__(self, sim: Simulator, outages: List):
        """``outages`` is a list of ``(start_ns, end_ns)`` windows."""
        for start, end in outages:
            if end <= start:
                raise ValueError(f"bad outage window ({start}, {end})")
        self.sim = sim
        self.outages = sorted(outages)
        self.dropped = 0

    def in_outage(self, now: int) -> bool:
        """True while ``now`` falls inside any outage window."""
        return any(start <= now < end for start, end in self.outages)

    def process(self, packet: Packet, switch: Switch,
                ingress: Port) -> Optional[List[Packet]]:
        if self.in_outage(self.sim.now):
            self.dropped += 1
            return []
        return None
