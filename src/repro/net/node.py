"""Nodes: hosts, switches, and the packet-processor hook for offloads.

Hosts terminate transports; switches forward packets and optionally run
:class:`PacketProcessor` offloads (in-network cache, mutation, aggregation)
that may consume, rewrite, or replace packets in flight — the in-network
computing model of the paper.
"""

from __future__ import annotations

import itertools
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Protocol,
                    Sequence)

from ..sim.engine import Simulator
from ..sim.trace import Counter
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .link import Port
    from .routing import PortSelector

__all__ = ["Node", "Host", "Switch", "PacketProcessor", "ProtocolHandler"]

_addresses = itertools.count(1)


class ProtocolHandler(Protocol):
    """Anything a host can hand received packets to (a transport endpoint)."""

    def handle_packet(self, packet: Packet) -> None:
        """Process one packet addressed to this host."""


class PacketProcessor(Protocol):
    """In-network offload hook invoked by a switch for every packet.

    :meth:`process` returns ``None`` to let the original packet continue,
    an empty list to consume it, or a list of replacement packets that the
    switch forwards instead (each routed by its own destination).
    """

    def process(self, packet: Packet, switch: "Switch",
                ingress: "Port") -> Optional[List[Packet]]:
        """Inspect/transform one packet."""


class Node:
    """Base class for anything attached to links."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.address: int = next(_addresses)
        self.ports: List["Port"] = []
        self.counters = Counter()

    def attach_port(self, port: "Port") -> None:
        """Register a newly created port (called by :class:`~repro.net.link.Link`)."""
        self.ports.append(port)

    def receive(self, packet: Packet, ingress: "Port") -> None:
        """Handle a packet arriving on ``ingress``."""
        raise NotImplementedError

    def port_to(self, neighbor: "Node") -> "Port":
        """The local port whose link leads directly to ``neighbor``."""
        for port in self.ports:
            if port.peer is neighbor:
                return port
        raise LookupError(f"{self.name} has no port to {neighbor.name}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} addr={self.address}>"


class Host(Node):
    """End host: dispatches received packets to registered transports."""

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self._protocols: Dict[str, ProtocolHandler] = {}
        self._routes: Dict[int, "Port"] = {}

    def register_protocol(self, protocol: str, handler: ProtocolHandler) -> None:
        """Attach a transport endpoint for packets labelled ``protocol``."""
        self._protocols[protocol] = handler

    def protocol(self, name: str) -> ProtocolHandler:
        """Look up a registered transport endpoint."""
        return self._protocols[name]

    def add_route(self, dst_address: int, port: "Port") -> None:
        """Pin traffic for ``dst_address`` to a specific port (multihomed hosts)."""
        self._routes[dst_address] = port

    def egress_port(self, dst_address: int) -> "Port":
        """Port used to reach ``dst_address`` (defaults to the first port)."""
        route = self._routes.get(dst_address)
        if route is not None:
            return route
        if not self.ports:
            raise RuntimeError(f"host {self.name} has no ports")
        return self.ports[0]

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet`` out of the appropriate port."""
        self.counters.add("tx_packets")
        self.counters.add("tx_bytes", packet.size)
        if self.sim.ledger is not None:
            self.sim.ledger.packet_injected(packet, self.name)
        return self.egress_port(packet.dst).send(packet)

    def receive(self, packet: Packet, ingress: "Port") -> None:
        ledger = self.sim.ledger
        if ledger is not None:
            ledger.packet_arrived(packet, self.name)
        if packet.dst != self.address:
            self.counters.add("misrouted")
            if ledger is not None:
                ledger.packet_dropped(packet, self.name, "misrouted")
            return
        if packet.corrupted:
            # The checksum stand-in: damaged payloads are detected here
            # and dropped, never delivered to the transport.  Recovery is
            # the transport's job (retransmission after RTO/NACK).
            self.counters.add("checksum_drops")
            if ledger is not None:
                ledger.packet_dropped(packet, self.name, "checksum")
            return
        self.counters.add("rx_packets")
        self.counters.add("rx_bytes", packet.size)
        handler = self._protocols.get(packet.protocol)
        if handler is None:
            self.counters.add("no_protocol")
            if ledger is not None:
                ledger.packet_dropped(packet, self.name, "no_protocol")
            return
        if ledger is not None:
            ledger.packet_delivered(packet, self.name)
        handler.handle_packet(packet)


class Switch(Node):
    """Output-queued switch with pluggable path selection and offload hooks."""

    def __init__(self, sim: Simulator, name: str,
                 selector: Optional["PortSelector"] = None):
        super().__init__(sim, name)
        self._table: Dict[int, List["Port"]] = {}
        self.selector = selector
        self.processors: List[PacketProcessor] = []
        self.record_hops = False
        #: False while the switch is crashed: packets are dropped, queues
        #: were flushed, and attached links are down.
        self.alive = True
        #: Optional map from a port to its pathlet id; when set, the switch
        #: honours MTP path-exclude lists by filtering candidate ports.
        self.pathlet_lookup = None  # type: Optional[Callable[[Port], int]]

    def add_route(self, dst_address: int, ports: Sequence["Port"]) -> None:
        """Install candidate egress ports for a destination address."""
        if not ports:
            raise ValueError("route needs at least one port")
        self._table[dst_address] = list(ports)

    def add_processor(self, processor: PacketProcessor) -> None:
        """Attach an in-network offload; processors run in attach order."""
        self.processors.append(processor)

    def candidate_ports(self, dst_address: int) -> List["Port"]:
        """Candidate egress ports for ``dst_address`` (raises if unroutable)."""
        try:
            return self._table[dst_address]
        except KeyError:
            raise LookupError(
                f"{self.name} has no route to address {dst_address}") from None

    def crash(self) -> None:
        """Crash the switch: offload state lost, queues flushed, links down.

        Each attached offload gets a last-gasp ``on_switch_crash(switch)``
        callback (if it defines one) before being detached — the hook is
        where checkpoint/handoff logic lives; offloads without one simply
        lose their state, exactly like a power cut.  All egress queues are
        flushed (packets lost), and every attached link is taken down in
        both directions so neighbours see loss of light.
        """
        if not self.alive:
            return
        self.alive = False
        for processor in self.processors:
            hook = getattr(processor, "on_switch_crash", None)
            if hook is not None:
                hook(self)
        self.processors.clear()
        ledger = self.sim.ledger
        for port in self.ports:
            while True:
                packet = port.queue.dequeue(self.sim.now)
                if packet is None:
                    break
                self.counters.add("crash_flushed")
                if ledger is not None:
                    ledger.packet_dropped(packet, port.name, "switch_crash")
            port.set_down()
            if port.peer_port is not None:
                port.peer_port.set_down()

    def restart(self, processors: Optional[List[PacketProcessor]] = None,
                ) -> None:
        """Bring a crashed switch back with empty (or supplied) offloads.

        Routing tables survive (they model control-plane state pushed by
        the controller); offload state does not, unless the caller hands
        back processors rebuilt from a crash-time checkpoint.
        """
        if self.alive:
            return
        self.alive = True
        if processors is not None:
            self.processors = list(processors)
        for port in self.ports:
            port.set_up()
            if port.peer_port is not None:
                port.peer_port.set_up()

    def receive(self, packet: Packet, ingress: "Port") -> None:
        ledger = self.sim.ledger
        if not self.alive:
            # A crashed switch is a black hole: anything that still
            # reaches it (e.g. delivered in the same tick as the crash)
            # is dropped.
            self.counters.add("switch_down_drops")
            if ledger is not None:
                ledger.packet_arrived(packet, self.name)
                ledger.packet_dropped(packet, self.name, "switch_down")
            return
        self.counters.add("rx_packets")
        if ledger is not None:
            ledger.packet_arrived(packet, self.name)
        if self.record_hops:
            packet.hops.append(self.name)
        packets: List[Packet] = [packet]
        for processor in self.processors:
            next_packets: List[Packet] = []
            for current in packets:
                result = processor.process(current, self, ingress)
                if result is None:
                    next_packets.append(current)
                else:
                    if ledger is not None:
                        ledger.packet_transformed(current, result, self.name)
                    next_packets.extend(result)
            packets = next_packets
            if not packets:
                self.counters.add("consumed")
                return
        for current in packets:
            self.forward(current)

    def forward(self, packet: Packet) -> None:
        """Route one packet to an egress port and enqueue it."""
        if self.sim.ledger is not None:
            # Offloads inject brand-new packets (in-network ACKs, aggregated
            # gradients, cache answers) straight through forward().
            self.sim.ledger.packet_forwarded(packet, self.name)
        try:
            candidates = self.candidate_ports(packet.dst)
        except LookupError:
            self.counters.add("no_route")
            if self.sim.ledger is not None:
                self.sim.ledger.packet_dropped(packet, self.name, "no_route")
            return
        candidates = self._honour_exclusions(packet, candidates)
        if len(candidates) == 1 or self.selector is None:
            port = candidates[0]
        else:
            port = self.selector.select(packet, candidates, self.sim.now)
        if port.send(packet):
            self.counters.add("forwarded")
        else:
            self.counters.add("dropped")

    def _honour_exclusions(self, packet: Packet,
                           candidates: List["Port"]) -> List["Port"]:
        """Filter out ports whose pathlet the sender asked to avoid.

        Only applies when a pathlet lookup is configured and the packet's
        header carries a non-empty exclude list; if every candidate is
        excluded, the original set is used (the network must still deliver).
        """
        if self.pathlet_lookup is None or len(candidates) <= 1:
            return candidates
        excluded = getattr(packet.header, "path_exclude", None)
        if not excluded:
            return candidates
        excluded_ids = {path_id for path_id, _tc in excluded}
        allowed = [port for port in candidates
                   if self.pathlet_lookup(port) not in excluded_ids]
        if allowed:
            self.counters.add("exclusions_honoured")
            return allowed
        return candidates
