"""Setup shim for environments without the `wheel` package.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` works via the legacy
``setup.py develop`` path when PEP 517 editable builds are unavailable.
"""

from setuptools import setup

setup()
