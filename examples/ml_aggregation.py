#!/usr/bin/env python3
"""In-network gradient aggregation for ML training (ATP-style, Section 4).

Four workers push gradient chunks to a parameter server each round.  With
the aggregation offload on the rack switch, the switch sums the chunks and
forwards one message per (round, chunk) — an N-to-1 reduction in both
bytes and parameter-server work.

Run:  python examples/ml_aggregation.py
"""

from repro.core import MtpStack
from repro.net import DropTailQueue, Network
from repro.offloads import AggregationOffload, GradientChunk
from repro.sim import Simulator, gbps, microseconds, milliseconds

N_WORKERS = 4
N_ROUNDS = 20
CHUNKS_PER_ROUND = 8
CHUNK_VALUES = 16
CHUNK_BYTES = 1024


def run(with_offload: bool):
    sim = Simulator()
    net = Network(sim)
    tor = net.add_switch("tor")
    ps_host = net.add_host("ps")
    queue = lambda: DropTailQueue(128, 20)
    net.connect(tor, ps_host, gbps(10), microseconds(5), queue_factory=queue)
    workers = []
    for index in range(N_WORKERS):
        worker = net.add_host(f"worker{index}")
        net.connect(worker, tor, gbps(10), microseconds(2),
                    queue_factory=queue)
        workers.append(worker)
    net.install_routes()

    received = []
    MtpStack(ps_host).endpoint(
        port=900, on_message=lambda ep, msg: received.append(msg))
    if with_offload:
        tor.add_processor(AggregationOffload(
            sim, service_port=900, n_workers=N_WORKERS,
            ps_address=ps_host.address, ps_port=900))

    endpoints = [MtpStack(worker).endpoint() for worker in workers]
    for round_id in range(N_ROUNDS):
        for chunk_id in range(CHUNKS_PER_ROUND):
            for worker_id, endpoint in enumerate(endpoints):
                chunk = GradientChunk(round_id, chunk_id, worker_id,
                                      values=[1.0] * CHUNK_VALUES)
                sim.schedule(round_id * 50_000,
                             endpoint.send_message, ps_host.address, 900,
                             CHUNK_BYTES, 0, chunk)
    sim.run(until=milliseconds(20))
    return received


def main() -> None:
    plain = run(with_offload=False)
    offloaded = run(with_offload=True)
    print(f"without offload: parameter server handled {len(plain)} messages")
    print(f"with offload:    parameter server handled {len(offloaded)} "
          f"messages ({len(plain) // max(1, len(offloaded))}x reduction)")
    sample = offloaded[0].payload
    print(f"sample aggregated chunk: round={sample.round_id} "
          f"chunk={sample.chunk_id} values[0]={sample.values[0]} "
          f"(sum over {sample.n_workers} workers)")


if __name__ == "__main__":
    main()
