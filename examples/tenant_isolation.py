#!/usr/bin/env python3
"""Per-tenant isolation without per-tenant queues (the Figure-7 scenario).

Tenant 2 opens 8x as many streams as tenant 1 over a shared 100 Gbps link.
Three switch configurations are compared: a plain shared DCTCP queue,
per-tenant DRR queues, and MTP's fair-share policing on a single queue.

Run:  python examples/tenant_isolation.py
"""

from repro.experiments import Fig7Config, compare_fig7
from repro.experiments.common import format_table
from repro.sim import milliseconds


def main() -> None:
    config = Fig7Config(duration_ns=milliseconds(3))
    results = compare_fig7(config)
    rows = []
    for system, result in results.items():
        rows.append([
            system,
            f"{result.tenant_goodput_bps['tenant1'] / 1e9:.1f}",
            f"{result.tenant_goodput_bps['tenant2'] / 1e9:.1f}",
            f"{result.fairness:.3f}",
        ])
    print(format_table(
        ["switch config", "tenant1 (Gbps)", "tenant2 (Gbps)", "Jain index"],
        rows,
        title="Tenant 2 runs 8x the streams of tenant 1 (shared 100G link)"))
    print("\nshared queue rewards opening more flows; DRR needs a queue per"
          "\ntenant; MTP's fair-share queue isolates with one counter per"
          "\nactive tenant.")


if __name__ == "__main__":
    main()
