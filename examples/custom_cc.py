#!/usr/bin/env python3
"""Plugging a custom congestion-control algorithm into MTP.

Section 3.1.3: "The feedback for each pathlet is identified by a
Type-Length-Value.  This allows for algorithms like RCP and DCTCP to
coexist."  This example registers a toy telemetry-driven algorithm for the
FB_QUEUE feedback type and runs it against the built-in ECN algorithm on
parallel pathlets of the same network — two dialects, one sender, one run.

Run:  python examples/custom_cc.py
"""

from repro.core import (CongestionController, EcnFeedbackSource,
                        FB_QUEUE, FEEDBACK_ALGORITHMS, MtpStack,
                        PathletRegistry, QueueFeedbackSource,
                        register_feedback_algorithm)
from repro.core.reassembly import BlobSender
from repro.net import DropTailQueue, EcmpSelector, Network, RateMonitor
from repro.sim import Simulator, gbps, microseconds, milliseconds


class TargetQueueController(CongestionController):
    """Toy algorithm: hold the reported queue at ``target`` packets."""

    TARGET = 10.0

    def _react(self, feedback, acked_bytes, now):
        if feedback is None or feedback.type != FB_QUEUE:
            return
        if feedback.value < self.TARGET:
            self.cwnd += acked_bytes  # room: grow fast
        else:
            overshoot = (feedback.value - self.TARGET) / feedback.value
            self.cwnd = max(self.min_window,
                            self.cwnd * (1 - 0.5 * overshoot))


def main() -> None:
    register_feedback_algorithm(FB_QUEUE, TargetQueueController)

    sim = Simulator()
    net = Network(sim)
    sender = net.add_host("sender")
    receiver = net.add_host("receiver")
    sw1 = net.add_switch("sw1", selector=EcmpSelector())
    sw2 = net.add_switch("sw2")
    queue = lambda: DropTailQueue(128, 20)
    net.connect(sender, sw1, gbps(10), microseconds(1))
    ecn_path = net.connect(sw1, sw2, gbps(5), microseconds(2),
                           queue_factory=queue)
    custom_path = net.connect(sw1, sw2, gbps(5), microseconds(2),
                              queue_factory=queue)
    net.connect(sw2, receiver, gbps(10), microseconds(1))
    net.install_routes()

    registry = PathletRegistry(sim)
    ecn_id = registry.register(ecn_path.port_a, EcnFeedbackSource(20))
    custom_id = registry.register(custom_path.port_a, QueueFeedbackSource())

    monitor = RateMonitor(sim, microseconds(100))
    stack_r = MtpStack(receiver)
    stack_r.endpoint(port=100,
                     on_message=lambda ep, msg: monitor.record_bytes(
                         msg.size))
    stack_s = MtpStack(sender)
    endpoint = stack_s.endpoint()
    for _ in range(4):  # several streams so ECMP uses both pathlets
        BlobSender(endpoint, receiver.address, 100, total_bytes=1 << 40,
                   window_messages=64)
    sim.run(until=milliseconds(8))

    goodput = monitor.mean_bps(milliseconds(1), milliseconds(8)) / 1e9
    ecn_ctl = stack_s.cc.controller(ecn_id, "default")
    custom_ctl = stack_s.cc.controller(custom_id, "default")
    print(f"aggregate goodput over both pathlets: {goodput:.1f} Gbps "
          f"(capacity 10)")
    print(f"pathlet {ecn_id} speaks ECN      -> "
          f"{type(ecn_ctl).__name__:<22} window={ecn_ctl.window()}B")
    print(f"pathlet {custom_id} speaks QUEUEteleme -> "
          f"{type(custom_ctl).__name__:<22} window={custom_ctl.window()}B")
    print(f"custom path queue now: {len(custom_path.port_a.queue)} pkts "
          f"(target {TargetQueueController.TARGET:.0f})")


if __name__ == "__main__":
    main()
