#!/usr/bin/env python3
"""Quickstart: send MTP messages across a simulated two-host network.

Builds the smallest interesting topology (two hosts, one ECN-marking
bottleneck registered as a pathlet), sends a handful of independent
messages, and prints what arrived and what the pathlet congestion control
learned along the way.

Run:  python examples/quickstart.py
"""

from repro.core import EcnFeedbackSource, MtpStack, PathletRegistry
from repro.net import DropTailQueue, Network
from repro.sim import Simulator, format_rate, format_time, gbps, \
    microseconds, milliseconds


def main() -> None:
    sim = Simulator()

    # --- topology: alice --(10 Gbps, 5us, ECN queue)-- bob ---------------
    net = Network(sim)
    alice = net.add_host("alice")
    bob = net.add_host("bob")
    net.connect(alice, bob, gbps(10), microseconds(5),
                queue_factory=lambda: DropTailQueue(128, ecn_threshold=20))
    net.install_routes()

    # --- make the bottleneck a pathlet that emits ECN feedback -----------
    registry = PathletRegistry(sim)
    pathlet_id = registry.register(alice.port_to(bob), EcnFeedbackSource(20))

    # --- MTP stacks and endpoints ----------------------------------------
    alice_stack = MtpStack(alice)
    bob_stack = MtpStack(bob)

    def on_message(endpoint, message):
        print(f"[{format_time(sim.now)}] bob got message "
              f"#{message.msg_id}: {message.size} bytes, "
              f"payload={message.payload!r}, "
              f"latency={format_time(message.latency_ns)}")

    bob_stack.endpoint(port=100, on_message=on_message)
    sender = alice_stack.endpoint()

    # --- send independent messages: no connection setup needed -----------
    sender.send_message(bob.address, 100, 512,
                        payload={"op": "GET", "key": "user:42"})
    sender.send_message(bob.address, 100, 200_000)  # a multi-packet message
    sender.send_message(bob.address, 100, 1_000, priority=-1,
                        payload="urgent: sent last, arrives first")

    sim.run(until=milliseconds(10))

    # --- what the end-host learned ---------------------------------------
    window = alice_stack.cc.window(pathlet_id, "default")
    print(f"\nafter {format_time(sim.now)}:")
    print(f"  messages completed: {sender.messages_completed}")
    print(f"  data packets sent:  {sender.data_packets_sent} "
          f"({sender.retransmissions} retransmitted)")
    print(f"  smoothed RTT:       {format_time(sender.srtt or 0)}")
    print(f"  pathlet {pathlet_id} window:  {window} bytes "
          f"(~{format_rate(window * 8e9 / (sender.srtt or 1))} if kept full)")


if __name__ == "__main__":
    main()
