#!/usr/bin/env python3
"""Message-aware multipath load balancing (the Figure-6 scenario, small).

A sender and receiver are joined by two 100 Gbps paths, one of them 1 us
longer.  The same skewed message workload runs under ECMP flow hashing,
per-packet spraying, and MTP's message-aware balancer, and the tail
completion times are compared.

Run:  python examples/multipath_loadbalance.py
"""

from repro.experiments import Fig6Config, compare_fig6
from repro.experiments.common import format_table
from repro.sim import milliseconds


def main() -> None:
    config = Fig6Config(duration_ns=milliseconds(5),
                        max_message_bytes=512 * 1024)
    results = compare_fig6(config)
    rows = []
    for system, result in results.items():
        rows.append([
            system,
            result.messages_completed,
            f"{result.p50_fct_ns() / 1e3:.0f}",
            f"{result.p99_fct_ns() / 1e3:.0f}",
        ])
    print(format_table(
        ["system", "messages", "p50 FCT (us)", "p99 FCT (us)"], rows,
        title="Two 100G paths (one +1us), skewed 10KB-512KB messages"))
    best = min(results.values(), key=lambda result: result.p99_fct_ns())
    print(f"\nlowest tail: {best.system} "
          f"(p99 = {best.p99_fct_ns() / 1e3:.0f}us)")


if __name__ == "__main__":
    main()
