#!/usr/bin/env python3
"""Print the paper's Table 1 and verify MTP's column with live probes.

Run:  python examples/feature_matrix.py
"""

from repro.experiments import render_paper_table, run_probes
from repro.experiments.table1 import PROBES


def main() -> None:
    print(render_paper_table())
    print("\nverifying MTP's column against this implementation...")
    for requirement, passed in run_probes().items():
        description = PROBES[requirement][0]
        status = "PASS" if passed else "FAIL"
        print(f"  [{status}] {requirement}: {description}")


if __name__ == "__main__":
    main()
