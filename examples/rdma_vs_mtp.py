#!/usr/bin/env python3
"""Section 2.4 live: RDMA RC vs MTP on a sprayed two-path fabric.

Both transports move the same messages over two equal paths with a 3 us
delay skew under per-packet spraying.  RDMA RC mandates in-order PSNs, so
every reordering looks like a loss (discard, NAK, go-back-N); MTP's
messages acknowledge per packet and simply reassemble.

Run:  python examples/rdma_vs_mtp.py
"""

from repro.core import EcnFeedbackSource, MtpStack, PathletRegistry
from repro.net import (DropTailQueue, PacketSpraySelector, build_two_path)
from repro.sim import Simulator, gbps, microseconds, milliseconds
from repro.transport import RdmaStack

N_MESSAGES = 20
MESSAGE_BYTES = 100_000


def build(sim):
    return build_two_path(
        sim, rate_a_bps=gbps(10), rate_b_bps=gbps(10),
        delay_a_ns=microseconds(5), delay_b_ns=microseconds(8),
        edge_rate_bps=gbps(40), edge_delay_ns=microseconds(1),
        queue_factory=lambda: DropTailQueue(256),
        selector=PacketSpraySelector("round_robin"))


def run_rdma():
    sim = Simulator()
    net, sender, receiver, sw1, sw2 = build(sim)
    done = []
    qp_r = RdmaStack(receiver).create_qp(
        "rc", on_message=lambda qp, src, size: done.append(sim.now))
    qp_s = RdmaStack(sender).create_qp("rc", rate_bps=gbps(10))
    qp_s.connect(receiver.address, qp_r.qp_number)
    qp_r.connect(sender.address, qp_s.qp_number)
    for _ in range(N_MESSAGES):
        qp_s.send_message(MESSAGE_BYTES)
    sim.run(until=milliseconds(100))
    return done, qp_r.packets_discarded, qp_s.retransmissions


def run_mtp():
    sim = Simulator()
    net, sender, receiver, sw1, sw2 = build(sim)
    registry = PathletRegistry(sim)
    for port in sw1.candidate_ports(receiver.address):
        registry.register(port, EcnFeedbackSource(20))
    done = []
    MtpStack(receiver).endpoint(
        port=100, on_message=lambda ep, msg: done.append(sim.now))
    endpoint = MtpStack(sender).endpoint()
    for _ in range(N_MESSAGES):
        endpoint.send_message(receiver.address, 100, MESSAGE_BYTES)
    sim.run(until=milliseconds(100))
    return done, 0, endpoint.retransmissions


def main() -> None:
    for name, runner in (("RDMA RC", run_rdma), ("MTP    ", run_mtp)):
        done, discarded, retx = runner()
        finish_ms = done[-1] / 1e6 if len(done) == N_MESSAGES else None
        status = (f"all {N_MESSAGES} messages in {finish_ms:.2f} ms"
                  if finish_ms is not None
                  else f"only {len(done)}/{N_MESSAGES} finished")
        print(f"{name}: {status}; reorder-discards={discarded}, "
              f"retransmissions={retx}")
    print("\nsame fabric, same spraying: RC's in-order PSN rule turns "
          "every reorder into recovery work;\nMTP's per-packet SACKs "
          "reassemble and move on (Section 2.4).")


if __name__ == "__main__":
    main()
