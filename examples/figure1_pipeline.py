#!/usr/bin/env python3
"""The paper's Figure 1, end to end: a web cluster with in-network
computing at every layer.

Topology::

    client -- tor1 ==(2 parallel paths)== tor2 -- lb -- {replica1..3}
               |(1) cache                  |(2b) multipath LB
                                           (2a) L7 load balancer
    (3a) ECN feedback on the paths, (3b) replica load feedback at the LB

A client issues KVS GETs.  Hot keys are answered by the switch cache
without crossing the fabric; misses travel over the message-aware
multipath fabric to an L7 balancer that picks the least-loaded replica.

Run:  python examples/figure1_pipeline.py
"""

from repro.apps import KvsClient, KvsServer
from repro.core import EcnFeedbackSource, MtpStack, PathletRegistry
from repro.net import DropTailQueue, Network
from repro.offloads import (InNetworkCache, L7LoadBalancer,
                            MessageAwareSelector, Replica)
from repro.sim import (SeedSequence, Simulator, gbps, microseconds,
                       milliseconds)
from repro.stats import summarize

N_REQUESTS = 300
HOT_KEYS = 4
COLD_KEYS = 40


def build(sim):
    net = Network(sim)
    client_host = net.add_host("client")
    lb_host = net.add_host("lb")
    tor1 = net.add_switch("tor1", selector=MessageAwareSelector())
    tor2 = net.add_switch("tor2")
    queue = lambda: DropTailQueue(128, 20)
    net.connect(client_host, tor1, gbps(10), microseconds(2),
                queue_factory=queue)
    path_a = net.connect(tor1, tor2, gbps(10), microseconds(5),
                         queue_factory=queue)
    path_b = net.connect(tor1, tor2, gbps(10), microseconds(6),
                         queue_factory=queue)
    net.connect(tor2, lb_host, gbps(10), microseconds(2),
                queue_factory=queue)
    replica_hosts = []
    for index in range(3):
        replica = net.add_host(f"replica{index}")
        net.connect(tor2, replica, gbps(10), microseconds(2),
                    queue_factory=queue)
        replica_hosts.append(replica)
    net.install_routes()

    # (3a) pathlet feedback on the parallel fabric paths
    registry = PathletRegistry(sim)
    registry.register(path_a.port_a, EcnFeedbackSource(20))
    registry.register(path_b.port_a, EcnFeedbackSource(20))

    # backends, one slow (2b: the LB must notice)
    replicas = []
    servers = []
    for index, host in enumerate(replica_hosts):
        endpoint = MtpStack(host).endpoint(port=700)
        service = microseconds(400 if index == 0 else 40)
        server = KvsServer(endpoint, service_time_ns=service)
        servers.append(server)
        replicas.append(Replica(host.address, 700))

    # (2a) L7 balancer on its own host
    balancer = L7LoadBalancer(MtpStack(lb_host).endpoint(port=700),
                              replicas, policy="least_loaded")

    # (1) cache on the client's top-of-rack switch
    cache = InNetworkCache(sim, service_port=700, capacity=HOT_KEYS)
    tor1.add_processor(cache)

    client = KvsClient(MtpStack(client_host).endpoint(),
                       lb_host.address, 700)
    return client, servers, balancer, cache


def main() -> None:
    sim = Simulator()
    rng = SeedSequence(11).stream("fig1")
    client, servers, balancer, cache = build(sim)
    for server in servers:
        for key_index in range(COLD_KEYS):
            server.put(f"key{key_index}", f"value{key_index}",
                       value_size=1500)

    def issue(count=[0]):
        if count[0] >= N_REQUESTS:
            return
        count[0] += 1
        # 70% of requests hit a few hot keys (Zipf-ish skew).
        if rng.random() < 0.7:
            key = f"key{rng.randrange(HOT_KEYS)}"
        else:
            key = f"key{rng.randrange(COLD_KEYS)}"
        client.get(key)
        sim.schedule(microseconds(25), issue)

    issue()
    sim.run(until=milliseconds(200))

    latencies_us = [latency / 1000 for _, latency, _ in client.responses]
    stats = summarize(latencies_us)
    origins = client.hits_by_origin()
    print(f"requests answered: {stats['count']:.0f}/{N_REQUESTS}")
    print(f"latency: mean={stats['mean']:.0f}us p50={stats['p50']:.0f}us "
          f"p99={stats['p99']:.0f}us")
    print(f"answered by switch cache: {origins.get('cache', 0)} "
          f"(hit rate {cache.hit_rate:.0%})")
    print(f"replica request distribution: {balancer.distribution()} "
          f"(replica0 is 10x slower; the LB steers around it)")
    backend_gets = sum(server.gets_served for server in servers)
    print(f"backend GETs served: {backend_gets} "
          f"(cache absorbed {origins.get('cache', 0)})")


if __name__ == "__main__":
    main()
