#!/usr/bin/env python3
"""Bridging legacy TCP islands over an MTP core (Section 4).

A legacy client and server speak plain TCP; the core between their racks
is MTP with two parallel paths and packet spraying.  Gateways terminate
TCP at the island edge, carry the stream as independent MTP chunk
messages (which the core may reorder freely), and restore byte order on
the far side.

Run:  python examples/tcp_bridge.py
"""

from repro.core import EcnFeedbackSource, PathletRegistry
from repro.net import DropTailQueue, Network, PacketSpraySelector
from repro.offloads import TcpMtpGateway
from repro.sim import Simulator, format_time, gbps, microseconds, \
    milliseconds
from repro.transport import ConnectionCallbacks, TcpStack

TRANSFER = 2_000_000


def main() -> None:
    sim = Simulator()
    net = Network(sim)
    client = net.add_host("client")
    server = net.add_host("server")
    gw_a = TcpMtpGateway(sim, "gwA", listen_port=80)
    gw_b = TcpMtpGateway(sim, "gwB")
    net.add_node(gw_a)
    net.add_node(gw_b)
    sw1 = net.add_switch("sw1",
                         selector=PacketSpraySelector("round_robin"))
    sw2 = net.add_switch("sw2")
    queue = lambda: DropTailQueue(128, 20)
    net.connect(client, gw_a, gbps(10), microseconds(2))
    net.connect(gw_a, sw1, gbps(10), microseconds(2), queue_factory=queue)
    path_a = net.connect(sw1, sw2, gbps(10), microseconds(5),
                         queue_factory=queue)
    path_b = net.connect(sw1, sw2, gbps(10), microseconds(7),
                         queue_factory=queue)
    net.connect(sw2, gw_b, gbps(10), microseconds(2), queue_factory=queue)
    net.connect(gw_b, server, gbps(10), microseconds(2))
    net.install_routes()
    registry = PathletRegistry(sim)
    registry.register(path_a.port_a, EcnFeedbackSource(20))
    registry.register(path_b.port_a, EcnFeedbackSource(20))
    gw_a.set_peer(gw_b.address)
    gw_b.set_peer(gw_a.address)
    gw_b.upstream = (server.address, 80)

    received = [0]
    done = [None]

    def on_data(conn, nbytes):
        received[0] += nbytes
        if received[0] >= TRANSFER and done[0] is None:
            done[0] = sim.now

    TcpStack(server).listen(80, lambda conn: ConnectionCallbacks(
        on_data=on_data))
    TcpStack(client).connect(gw_a.address, 80, ConnectionCallbacks(
        on_connected=lambda c: c.send(TRANSFER)))
    sim.run(until=milliseconds(100))

    print(f"transferred {received[0]} of {TRANSFER} bytes "
          f"in {format_time(done[0]) if done[0] else 'N/A'}")
    print(f"core path A carried {path_a.port_a.bytes_transmitted} bytes, "
          f"path B {path_b.port_a.bytes_transmitted} bytes "
          f"(sprayed MTP chunks; TCP order restored at the gateways)")
    print(f"sessions bridged: {gw_a.sessions_opened}")


if __name__ == "__main__":
    main()
