#!/usr/bin/env python3
"""In-network KVS caching (the Figure-1 motivating scenario).

A client issues GET requests with a Zipf-like skew against a backend
key-value store.  A NetCache-style cache sits on the top-of-rack switch;
because every MTP request is an independent, self-describing message, the
cache answers hot keys from the data plane without touching the backend.

The script runs the same workload with the cache disabled and enabled and
prints the latency and backend-load difference.

Run:  python examples/innetwork_cache.py
"""

from repro.apps import KvsClient, KvsServer
from repro.core import MtpStack
from repro.net import DropTailQueue, Network
from repro.offloads import InNetworkCache
from repro.sim import (SeedSequence, Simulator, gbps, microseconds,
                       milliseconds)
from repro.stats import summarize

N_KEYS = 50
N_REQUESTS = 400
ZIPF_SKEW = 1.2
BACKEND_SERVICE_US = 50


def build(sim, with_cache):
    net = Network(sim)
    client_host = net.add_host("client")
    server_host = net.add_host("server")
    tor = net.add_switch("tor")
    queue = lambda: DropTailQueue(128, 20)
    net.connect(client_host, tor, gbps(10), microseconds(5),
                queue_factory=queue)
    net.connect(tor, server_host, gbps(10), microseconds(20),
                queue_factory=queue)
    net.install_routes()
    server = KvsServer(MtpStack(server_host).endpoint(port=700),
                       service_time_ns=microseconds(BACKEND_SERVICE_US))
    for key_index in range(N_KEYS):
        server.put(f"key{key_index}", f"value{key_index}", value_size=1500)
    cache = None
    if with_cache:
        cache = InNetworkCache(sim, service_port=700, capacity=8)
        tor.add_processor(cache)
    client = KvsClient(MtpStack(client_host).endpoint(),
                       server_host.address, 700)
    return client, server, cache


def zipf_key(rng):
    # Simple bounded Zipf sampler: rank ~ u^(-1/(s-1)) truncated.
    rank = int(rng.paretovariate(ZIPF_SKEW)) - 1
    return f"key{min(rank, N_KEYS - 1)}"


def run(with_cache):
    sim = Simulator()
    rng = SeedSequence(7).stream("zipf")
    client, server, cache = build(sim, with_cache)

    issued = [0]

    def issue():
        if issued[0] >= N_REQUESTS:
            return
        issued[0] += 1
        client.get(zipf_key(rng))
        sim.schedule(microseconds(20), issue)

    issue()
    sim.run(until=milliseconds(100))
    latencies = [latency / 1000 for _, latency, _ in client.responses]
    return client, server, cache, summarize(latencies)


def main() -> None:
    for with_cache in (False, True):
        client, server, cache, stats = run(with_cache)
        label = "with in-network cache" if with_cache else "backend only   "
        origins = client.hits_by_origin()
        print(f"{label}: {stats['count']:.0f} responses, "
              f"mean={stats['mean']:.0f}us p99={stats['p99']:.0f}us | "
              f"backend GETs={server.gets_served}, "
              f"cache hits={origins.get('cache', 0)}")
        if cache is not None:
            print(f"{'':>21}cache hit rate {cache.hit_rate:.0%} with only "
                  f"{len(cache)} entries of switch state")


if __name__ == "__main__":
    main()
